// cluster.go — the -cluster benchmark: the multi-node tier measured the
// same way the shard sweep measures the single daemon. For each node
// count the harness starts n in-process acfcd nodes over one shared
// in-memory origin, creates a file set through the routing client (so
// every file lives on exactly its hash owner), populates the origin out
// of band (the caches stay empty), and scans twice: a cold pass where
// every read is a pull-through fill, and a hot pass over the now-warm
// owners. The per-node peer-fill counters are summed into the report —
// the evidence the cluster fill path ran.

package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
)

// clusterSweep is one node count's measurement in the -cluster section.
type clusterSweep struct {
	Nodes      int         `json:"nodes"`
	Clients    int         `json:"clients"`
	Files      int         `json:"files"`
	FileBlocks int         `json:"file_blocks"`
	Cold       sweepResult `json:"cold"`
	Hot        sweepResult `json:"hot"`
	// Peer-fill counters summed over the nodes at the end of both
	// passes (see stats.FillStats).
	PeerFills      int64 `json:"peer_fills"`
	PeerFillMisses int64 `json:"peer_fill_misses"`
	PeerFillErrors int64 `json:"peer_fill_errors"`
}

type clusterParams struct {
	clients int
	files   int
	blocks  int
	nodes   []int
	cacheMB float64
	alloc   cache.Alloc
}

func runClusterBench(p clusterParams) ([]clusterSweep, error) {
	var out []clusterSweep
	for _, n := range p.nodes {
		cs, err := clusterBenchOne(n, p)
		if err != nil {
			return nil, fmt.Errorf("%d node(s): %w", n, err)
		}
		fmt.Fprintf(os.Stderr,
			"acload: cluster %d node(s) %2d clients: cold %8.0f req/s (hit %5.1f%%), hot %8.0f req/s (hit %5.1f%%), peer fills %d, peer misses %d, peer errors %d\n",
			n, p.clients, cs.Cold.Throughput, 100*cs.Cold.HitRatio, cs.Hot.Throughput, 100*cs.Hot.HitRatio,
			cs.PeerFills, cs.PeerFillMisses, cs.PeerFillErrors)
		out = append(out, cs)
	}
	return out, nil
}

func clusterBenchOne(n int, p clusterParams) (clusterSweep, error) {
	cs := clusterSweep{Nodes: n, Clients: p.clients, Files: p.files, FileBlocks: p.blocks}
	origin := cluster.NewMemOrigin()

	lns := make([]net.Listener, n)
	members := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return cs, err
		}
		lns[i] = ln
		members[i] = "tcp:" + ln.Addr().String()
	}
	nodes := make([]*cluster.Node, n)
	for i, m := range members {
		node, err := cluster.NewNode(cluster.NodeConfig{
			Self:    m,
			Members: members,
			Origin:  origin,
			Server: server.Config{
				Kernel: core.LiveConfig{
					CacheBytes: core.MB(p.cacheMB),
					Alloc:      p.alloc,
					WallClock:  true,
				},
				WritebackDepth: 64,
			},
		})
		if err != nil {
			return cs, err
		}
		nodes[i] = node
		go node.Srv.Serve(lns[i])
	}
	defer func() {
		for _, node := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			node.Srv.Shutdown(ctx)
			cancel()
			node.Srv.Close()
		}
	}()

	// Create the files on their owners, then populate the origin behind
	// the caches' backs: the first scan finds every node cold.
	setup := cluster.NewClient(members, 0)
	for i := 0; i < p.files; i++ {
		if _, err := setup.Create(clusterFileName(i), 0, p.blocks); err != nil {
			setup.Close()
			return cs, err
		}
	}
	setup.Close()
	buf := make([]byte, core.BlockSize)
	for i := 0; i < p.files; i++ {
		for b := 0; b < p.blocks; b++ {
			for j := range buf {
				buf[j] = byte(i + b + j)
			}
			if err := origin.WriteBlock(clusterFileName(i), int32(b), buf); err != nil {
				return cs, err
			}
		}
	}

	cold, err := clusterPass(members, p)
	if err != nil {
		return cs, fmt.Errorf("cold pass: %w", err)
	}
	cs.Cold = cold
	hot, err := clusterPass(members, p)
	if err != nil {
		return cs, fmt.Errorf("hot pass: %w", err)
	}
	cs.Hot = hot

	for _, node := range nodes {
		fs := node.Store().FillStats()
		cs.PeerFills += fs.PeerFills
		cs.PeerFillMisses += fs.PeerFillMisses
		cs.PeerFillErrors += fs.PeerFillErrors
	}
	return cs, nil
}

func clusterFileName(i int) string { return fmt.Sprintf("cluster/f%d", i) }

// clusterPass scans every file once with p.clients concurrent routing
// clients (client i walks file i mod files) and aggregates the
// measurements runSweep-style.
func clusterPass(members []string, p clusterParams) (sweepResult, error) {
	type out struct {
		st  replayStats
		err error
	}
	outs := make([]out, p.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < p.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i].st, outs[i].err = clusterScan(members, i%p.files, p.blocks)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := sweepResult{Clients: p.clients, Seconds: elapsed.Seconds()}
	var hits, accesses, bytes int64
	var all []time.Duration
	for i := range outs {
		if outs[i].err != nil {
			return res, fmt.Errorf("client %d: %w", i, outs[i].err)
		}
		st := &outs[i].st
		res.Requests += st.requests
		hits += st.hits
		accesses += st.hits + st.misses
		bytes += st.bytes
		all = append(all, st.latencies...)
	}
	if res.Seconds > 0 {
		res.Throughput = float64(res.Requests) / res.Seconds
		res.BytesPerSec = float64(bytes) / res.Seconds
	}
	if accesses > 0 {
		res.HitRatio = float64(hits) / float64(accesses)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50us = percentileUs(all, 0.50)
	res.P90us = percentileUs(all, 0.90)
	res.P99us = percentileUs(all, 0.99)
	return res, nil
}

// clusterScan is one routing client's sequential full-block scan of its
// file — the routed sibling of coldClient.
func clusterScan(members []string, fileIdx, blocks int) (replayStats, error) {
	var st replayStats
	cl := cluster.NewClient(members, 0)
	defer cl.Close()
	f, err := cl.Open(clusterFileName(fileIdx))
	if err != nil {
		return st, err
	}
	buf := make([]byte, core.BlockSize)
	st.latencies = make([]time.Duration, 0, blocks)
	for blk := int32(0); int(blk) < blocks; blk++ {
		st.requests++
		t0 := time.Now()
		hit, err := cl.ReadInto(f.ID, blk, 0, core.BlockSize, buf)
		st.latencies = append(st.latencies, time.Since(t0))
		st.bytes += core.BlockSize
		if err != nil {
			return st, err
		}
		if hit {
			st.hits++
		} else {
			st.misses++
		}
	}
	return st, nil
}
