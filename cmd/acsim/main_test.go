package main

import "testing"

func TestBuildApp(t *testing.T) {
	for _, name := range []string{"din", "cs2", "sort", "read300", "read490"} {
		app, err := buildApp(name)
		if err != nil || app == nil {
			t.Errorf("buildApp(%q) = %v, %v", name, app, err)
		}
	}
	for _, bad := range []string{"nope", "read", "readx", "read0"} {
		if _, err := buildApp(bad); err == nil {
			t.Errorf("buildApp(%q) accepted", bad)
		}
	}
	if a, _ := buildApp("read300"); a.Name() != "read300" {
		t.Errorf("read300 name = %q", a.Name())
	}
	if a, _ := buildApp("read444"); a.Name() != "read444" {
		t.Errorf("probe name = %q", a.Name())
	}
}
