// Command acsim runs an ad-hoc mix of the paper's workloads on one
// simulated machine and prints a per-process result table. It is the
// free-form companion to acbench's fixed experiments.
//
// Usage:
//
//	acsim -apps din:smart,cs2:oblivious [-cache 6.4] [-alloc lru-sp]
//	      [-seed 1] [-revoke] [-no-readahead]
//
// Each app spec is name[:mode]; the default mode is smart. read300 and
// readN forms (e.g. read490) build the Section 6 synthetic probe. Example:
//
//	acsim -apps "sort:smart,gli:smart,read300:foolish" -cache 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/workload"
)

var modeNames = map[string]workload.Mode{
	"oblivious": workload.Oblivious,
	"smart":     workload.Smart,
	"foolish":   workload.Foolish,
}

func main() {
	appsFlag := flag.String("apps", "", "comma-separated name[:mode] specs (required)")
	cacheFlag := flag.Float64("cache", 6.4, "cache size in MB")
	allocFlag := flag.String("alloc", "lru-sp", fmt.Sprintf("allocation policy: %v", cache.AllocNames()))
	seedFlag := flag.Uint64("seed", 1, "simulation seed")
	revokeFlag := flag.Bool("revoke", false, "enable foolish-manager revocation")
	noRAFlag := flag.Bool("no-readahead", false, "disable sequential read-ahead")
	flag.Parse()

	if *appsFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	alloc, err := cache.ParseAlloc(*allocFlag)
	if err != nil {
		fail("%v", err)
	}

	cfg := core.DefaultConfig()
	cfg.CacheBytes = core.MB(*cacheFlag)
	cfg.Alloc = alloc
	cfg.Seed = *seedFlag
	cfg.ReadAhead = !*noRAFlag
	if *revokeFlag {
		cfg.Revoke = cache.RevokeConfig{Enabled: true, MinDecisions: 200, MistakeRatio: 0.3}
	}
	sys := core.NewSystem(cfg)

	type launched struct {
		app  workload.App
		mode workload.Mode
		proc *core.Proc
	}
	var runs []launched
	for _, spec := range strings.Split(*appsFlag, ",") {
		name, modeName := spec, "smart"
		if i := strings.IndexByte(spec, ':'); i >= 0 {
			name, modeName = spec[:i], spec[i+1:]
		}
		mode, ok := modeNames[modeName]
		if !ok {
			fail("unknown mode %q in %q", modeName, spec)
		}
		app, err := buildApp(strings.TrimSpace(name))
		if err != nil {
			fail("%v", err)
		}
		if alloc == cache.GlobalLRU && mode != workload.Oblivious {
			fail("the original kernel (global-lru) supports only oblivious mode")
		}
		runs = append(runs, launched{app, mode, workload.Launch(sys, app, mode)})
	}

	sys.Run()

	fmt.Printf("%.1f MB cache, %s, seed %d\n", *cacheFlag, alloc, *seedFlag)
	fmt.Printf("%-10s %-10s %10s %10s %10s %10s %8s\n",
		"app", "mode", "elapsed s", "block IOs", "hits", "misses", "hit%")
	for _, r := range runs {
		st := r.proc.Stats()
		total := st.Hits + st.Misses
		hitPct := 0.0
		if total > 0 {
			hitPct = 100 * float64(st.Hits) / float64(total)
		}
		fmt.Printf("%-10s %-10s %10.1f %10d %10d %10d %7.1f%%\n",
			r.app.Name(), r.mode, r.proc.Elapsed().Seconds(),
			st.BlockIOs(), st.Hits, st.Misses, hitPct)
	}
	cs := sys.Cache().Stats()
	fmt.Printf("cache: %d evictions, %d overrules, %d placeholder hits, %d revocations\n",
		cs.Evictions, cs.Overrules, cs.PlaceholderHits, cs.Revocations)
}

// buildApp resolves an app name, including the readN family.
func buildApp(name string) (workload.App, error) {
	if mk, ok := expt.Registry[name]; ok {
		return mk(), nil
	}
	if strings.HasPrefix(name, "read") {
		n, err := strconv.Atoi(name[4:])
		if err == nil && n > 0 {
			if n == 300 {
				return workload.Read300(0), nil
			}
			return workload.Probe(int32(n), 0), nil
		}
	}
	return nil, fmt.Errorf("unknown app %q", name)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "acsim: "+format+"\n", args...)
	os.Exit(2)
}
