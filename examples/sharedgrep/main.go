// sharedgrep demonstrates the paper's Section 8 future work, implemented
// here: cache control over concurrently shared files. Two grep-like
// processes repeatedly scan the same source tree with an MRU policy. With
// ownership fixed at fault time (the base design), whichever process
// faulted a block in controls it forever, even when only the other
// process still uses it. With ownership following use (Config.SharedFiles),
// the active process's manager governs the shared blocks.
package main

import (
	"fmt"
	"log"

	acfc "repro"
)

const (
	files      = 60
	fileBlocks = 20 // 60 x 20 x 8 KB = ~9.4 MB shared tree
	passes     = 4
)

func run(sharedFiles bool) (aIOs, bIOs, transfers int64) {
	cfg := acfc.DefaultConfig()
	cfg.SharedFiles = sharedFiles
	sys := acfc.NewSystem(cfg)
	var tree []*acfc.File
	for i := 0; i < files; i++ {
		tree = append(tree, sys.CreateFile(fmt.Sprintf("src%02d.c", i), 0, fileBlocks))
	}
	grep := func(delay acfc.Time) func(*acfc.Proc) {
		return func(p *acfc.Proc) {
			p.Compute(delay)
			if err := p.EnableControl(); err != nil {
				log.Fatal(err)
			}
			p.SetPolicy(0, acfc.MRU) // same-order rescans want MRU
			for pass := 0; pass < passes; pass++ {
				for _, f := range tree {
					p.Open(f)
					for b := int32(0); b < fileBlocks; b++ {
						p.Read(f, b)
						p.Compute(3 * acfc.Millisecond)
					}
				}
			}
		}
	}
	pa := sys.Spawn("grep-a", grep(0))
	pb := sys.Spawn("grep-b", grep(30*acfc.Second)) // b starts during a's run
	sys.Run()
	return pa.Stats().BlockIOs(), pb.Stats().BlockIOs(), sys.Cache().Stats().Transfers
}

func main() {
	aFixed, bFixed, _ := run(false)
	aShared, bShared, transfers := run(true)
	fmt.Println("Two greps over one ~9.4 MB tree, 6.4 MB cache, MRU policies:")
	fmt.Printf("  fixed ownership:      a %5d I/Os, b %5d I/Os, total %5d\n",
		aFixed, bFixed, aFixed+bFixed)
	fmt.Printf("  ownership follows use: a %5d I/Os, b %5d I/Os, total %5d (%d transfers)\n",
		aShared, bShared, aShared+bShared, transfers)
}
