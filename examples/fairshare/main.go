// fairshare demonstrates why the kernel's allocation policy needs both of
// LRU-SP's extensions (the paper's Section 6), by re-running two of the
// paper's own configurations at the default 6.4 MB cache.
//
// Part 1 — is swapping necessary? The cs2+gli mix (both smart) runs under
// ALLOC-LRU, which consults managers but never swaps an overruled
// candidate with the chosen victim. Without swapping, a smart process's
// resident set keeps looking stale to the kernel, so it keeps being picked
// as the victim donor and loses the benefit of its own good policy
// (Figure 6).
//
// Part 2 — are placeholders necessary? An oblivious probe (Read400) runs
// next to a foolish Read300 that uses MRU, the worst possible policy for
// its pattern. Without placeholders (LRU-S) the fool's self-inflicted
// misses take their victims from the innocent probe; with them (LRU-SP)
// each miss is redirected at the block the foolish manager wrongly kept
// (Table 1).
package main

import (
	"fmt"

	acfc "repro"
)

func mix(alloc acfc.Alloc, builders []func() acfc.Workload, modes []acfc.Mode) []int64 {
	cfg := acfc.DefaultConfig()
	cfg.Alloc = alloc
	sys := acfc.NewSystem(cfg)
	var procs []*acfc.Proc
	for i, mk := range builders {
		procs = append(procs, acfc.Launch(sys, mk(), modes[i]))
	}
	sys.Run()
	var ios []int64
	for _, p := range procs {
		ios = append(ios, p.Stats().BlockIOs())
	}
	return ios
}

func main() {
	fmt.Println("Part 1: cs2+gli, both smart, 6.4 MB cache (is swapping necessary?)")
	smartMix := []func() acfc.Workload{acfc.Cscope2, acfc.Glimpse}
	smartModes := []acfc.Mode{acfc.Smart, acfc.Smart}
	sp := mix(acfc.LRUSP, smartMix, smartModes)
	al := mix(acfc.AllocLRU, smartMix, smartModes)
	fmt.Printf("  lru-sp:    cs2 %6d I/Os, gli %6d I/Os, total %6d\n", sp[0], sp[1], sp[0]+sp[1])
	fmt.Printf("  alloc-lru: cs2 %6d I/Os, gli %6d I/Os, total %6d\n", al[0], al[1], al[0]+al[1])
	fmt.Printf("  without swapping the mix does %.0f%% more I/O\n\n",
		100*(float64(al[0]+al[1])/float64(sp[0]+sp[1])-1))

	fmt.Println("Part 2: oblivious Read490 probe next to a foolish Read300 (are placeholders necessary?)")
	probeMix := []func() acfc.Workload{
		func() acfc.Workload { return acfc.Read300(0) },
		func() acfc.Workload { return acfc.ReadN(490, 1170, 0) },
	}
	obl := mix(acfc.LRUSP, probeMix, []acfc.Mode{acfc.Oblivious, acfc.Oblivious})
	unprot := mix(acfc.LRUS, probeMix, []acfc.Mode{acfc.Foolish, acfc.Oblivious})
	prot := mix(acfc.LRUSP, probeMix, []acfc.Mode{acfc.Foolish, acfc.Oblivious})
	fmt.Printf("  background oblivious, lru-sp:  probe %5d I/Os (baseline)\n", obl[1])
	fmt.Printf("  background foolish,   lru-s:   probe %5d I/Os (unprotected)\n", unprot[1])
	fmt.Printf("  background foolish,   lru-sp:  probe %5d I/Os (placeholders protect)\n", prot[1])
}
