// dbjoin shows the hot/cold pattern from the paper's Postgres experiment:
// a database joins a small outer relation against a large indexed one. The
// index is touched by every probe; the data blocks are touched once each.
// Raising the index file's priority — a single set_priority call — pins
// the hot structure and leaves the cold data to fight over what remains.
package main

import (
	"fmt"
	"log"

	acfc "repro"
)

const (
	outerBlocks = 400  // 3.2 MB outer relation
	dataBlocks  = 4000 // 32 MB inner relation
	idxBlocks   = 640  // 5 MB non-clustered B-tree
	probes      = 20000
)

func run(prioritizeIndex bool) (indexMisses, totalIOs int64) {
	cfg := acfc.DefaultConfig()
	sys := acfc.NewSystem(cfg)
	outer := sys.CreateFile("twentyk", 1, outerBlocks)
	data := sys.CreateFile("twohundredk", 1, dataBlocks)
	index := sys.CreateFile("twohundredk_unique1", 1, idxBlocks)

	p := sys.Spawn("join", func(p *acfc.Proc) {
		if err := p.EnableControl(); err != nil {
			log.Fatal(err)
		}
		if prioritizeIndex {
			// The paper's entire pjn strategy is this one call.
			if err := p.SetPriority(index, 1); err != nil {
				log.Fatal(err)
			}
		}
		rng := uint64(12345)
		next := func(n int64) int64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int64(rng % uint64(n))
		}
		for i := 0; i < probes; i++ {
			if i%50 == 0 {
				p.Read(outer, int32(i/50))
			}
			// Root, internal and leaf probe; every fifth key matches
			// and fetches a random data block.
			key := next(1000000)
			leaf := 9 + int32(key%631)
			p.Access(index, 0, 0, 256)
			p.Access(index, 1+leaf%8, 0, 256)
			p.Access(index, leaf, 0, 256)
			if key < 200000 {
				p.Access(data, int32(next(dataBlocks)), 0, 512)
			}
			p.Compute(3 * acfc.Millisecond)
		}
	})
	sys.Run()
	return countMisses(sys, index), p.Stats().BlockIOs()
}

// countMisses reports how many of the file's blocks are absent from the
// cache at the end — a proxy for how well the index survived.
func countMisses(sys *acfc.System, f *acfc.File) int64 {
	var missing int64
	for b := 0; b < f.Size(); b++ {
		if sys.Cache().Peek(acfc.BlockID{File: f.ID(), Num: int32(b)}) == nil {
			missing++
		}
	}
	return missing
}

func main() {
	coldIdx, coldIOs := run(false)
	hotIdx, hotIOs := run(true)
	fmt.Printf("default priorities:  %5d block I/Os, %d/%d index blocks evicted\n",
		coldIOs, coldIdx, idxBlocks)
	fmt.Printf("index at priority 1: %5d block I/Os, %d/%d index blocks evicted\n",
		hotIOs, hotIdx, idxBlocks)
	fmt.Printf("I/Os cut by %.0f%%\n", 100*(1-float64(hotIOs)/float64(coldIOs)))
}
