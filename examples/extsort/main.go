// extsort demonstrates the done-with pattern: an external merge sort whose
// temporary files are written once and read once. The smart version tells
// the kernel three things from the paper's sort strategy — flush the
// read-once input first (priority -1), prefer to keep the earliest-written
// temporaries (MRU), and flush each block the moment the merge has
// consumed it (set_temppri ... -1).
package main

import (
	"fmt"
	"log"

	acfc "repro"
)

const (
	inputBlocks = 1088 // 8.5 MB input
	runBlocks   = 64   // 512 KB in-core sort buffer
	fanIn       = 8
)

func run(smart bool) (int64, acfc.Time) {
	cfg := acfc.DefaultConfig()
	if !smart {
		cfg.Alloc = acfc.GlobalLRU
	}
	sys := acfc.NewSystem(cfg)
	input := sys.CreateFile("input", 1, inputBlocks)

	p := sys.Spawn("sort", func(p *acfc.Proc) {
		if smart {
			if err := p.EnableControl(); err != nil {
				log.Fatal(err)
			}
			p.SetPolicy(-1, acfc.MRU)
			p.SetPolicy(0, acfc.MRU)
			p.SetPriority(input, -1)
		}
		consume := func(f *acfc.File, b int32, comp acfc.Time) {
			p.Read(f, b)
			p.Compute(comp)
			if smart {
				p.SetTempPri(f, b, b, -1) // done with this block
			}
		}
		// Run formation.
		var runs []*acfc.File
		for start := int32(0); start < inputBlocks; start += runBlocks {
			run := p.CreateFile(fmt.Sprintf("run%03d", len(runs)), 1, 0)
			for b := start; b < start+runBlocks && b < inputBlocks; b++ {
				consume(input, b, 10*acfc.Millisecond)
				p.Write(run, b-start)
			}
			runs = append(runs, run)
		}
		// 8-way merges, earliest-created runs first.
		for level := 0; len(runs) > 1; level++ {
			var next []*acfc.File
			for i := 0; i < len(runs); i += fanIn {
				j := min(i+fanIn, len(runs))
				out := p.CreateFile(fmt.Sprintf("m%d-%03d", level, len(next)), 1, 0)
				cursors := make([]int32, j-i)
				for outBlk := int32(0); ; {
					advanced := false
					for k, src := range runs[i:j] {
						if int(cursors[k]) >= src.Size() {
							continue
						}
						consume(src, cursors[k], 8*acfc.Millisecond)
						cursors[k]++
						p.Write(out, outBlk)
						outBlk++
						advanced = true
					}
					if !advanced {
						break
					}
				}
				for _, src := range runs[i:j] {
					p.RemoveFile(src)
				}
				next = append(next, out)
			}
			runs = next
		}
	})
	sys.Run()
	return p.Stats().BlockIOs(), p.Elapsed()
}

func main() {
	lruIOs, lruT := run(false)
	smartIOs, smartT := run(true)
	fmt.Printf("oblivious sort: %5d block I/Os, %v\n", lruIOs, lruT)
	fmt.Printf("smart sort:     %5d block I/Os, %v\n", smartIOs, smartT)
	fmt.Printf("I/Os cut by %.0f%%\n", 100*(1-float64(smartIOs)/float64(lruIOs)))
}
