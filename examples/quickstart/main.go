// Quickstart: the paper's headline effect in thirty lines. A process scans
// a file slightly larger than the cache nine times (the dinero pattern).
// Under the kernel's LRU every scan misses every block; with one fbehavior
// call selecting MRU, almost the whole file stays resident.
package main

import (
	"fmt"
	"log"

	acfc "repro"
)

func run(smart bool) (int64, acfc.Time) {
	cfg := acfc.DefaultConfig()
	cfg.CacheBytes = acfc.MB(6.4) // 819 blocks
	if !smart {
		cfg.Alloc = acfc.GlobalLRU // the unmodified kernel
	}
	sys := acfc.NewSystem(cfg)
	trace := sys.CreateFile("cc.trace", 0, 1024) // 8 MB: does not fit

	p := sys.Spawn("scanner", func(p *acfc.Proc) {
		if smart {
			if err := p.EnableControl(); err != nil {
				log.Fatal(err)
			}
			// The paper's dinero policy: cyclic access wants MRU.
			if err := p.SetPriority(trace, 0); err != nil {
				log.Fatal(err)
			}
			if err := p.SetPolicy(0, acfc.MRU); err != nil {
				log.Fatal(err)
			}
		}
		for pass := 0; pass < 9; pass++ {
			p.ReadSeq(trace, 0, int32(trace.Size()))
			p.Compute(10 * acfc.Millisecond)
		}
	})
	sys.Run()
	return p.Stats().BlockIOs(), p.Elapsed()
}

func main() {
	lruIOs, lruT := run(false)
	mruIOs, mruT := run(true)
	fmt.Printf("original kernel (LRU):  %5d block I/Os, %v\n", lruIOs, lruT)
	fmt.Printf("app-controlled (MRU):   %5d block I/Os, %v\n", mruIOs, mruT)
	fmt.Printf("I/Os cut by %.0f%%\n", 100*(1-float64(mruIOs)/float64(lruIOs)))
}
