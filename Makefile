GO ?= go

.PHONY: all test race bench experiments charts fuzz clean

all: test

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/acbench

charts:
	$(GO) run ./cmd/acbench -charts

fuzz:
	$(GO) test ./internal/cache/ -fuzz FuzzCacheOps -fuzztime 30s

# The artifacts recorded in the repository.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
