GO ?= go

.PHONY: all check test vet race race-hot bench bench-cache bench-sim bench-json bench-policy-tournament bench-server bench-server-shards bench-server-hot bench-server-cold bench-server-cluster serve serve-cluster loadtest experiments charts fuzz fuzz-frames clean outputs

all: check

# The default gate: static checks, the test suite, the race detector
# over the packages with real cross-goroutine traffic (the parallel
# scheduler, the simulations it drives, the cache server — including
# the multi-shard soak: 16 sessions plus hangup saboteurs across 4
# kernel shards, invariant-checked per shard on every close — and the
# cluster tier, whose soak drives a 3-node cluster through a mid-run
# planned leave and an abrupt kill), then a short coverage-guided fuzz
# of the wire-frame codec.
check: vet test race-hot fuzz-frames

race-hot:
	$(GO) test -race ./internal/expt ./internal/core ./internal/server ./internal/disk ./internal/cluster

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The BUF<->ACM hot-path microbenchmarks, repeated for benchstat: hit
# path, two-level miss path, and the full evict/placeholder cycle.
bench-cache:
	$(GO) test ./internal/cache -run '^$$' -bench 'LookupHit|MissEvict|MissReplace' -benchmem -count 5

# The DES engine microbenchmarks, repeated for benchstat: the lookahead
# fast path vs the parked slow path, the forced-handoff interleave, and
# the event-heap push/pop cycle.
bench-sim:
	$(GO) test ./internal/sim -run '^$$' -bench 'Sleep|TwoProcInterleave|EventHeap' -benchmem -count 5

# Machine-readable experiment timings + run-cache stats (BENCH trajectory).
bench-json:
	$(GO) run ./cmd/acbench -run all -json > BENCH_acbench.json

# The bench-json sweep plus the allocation-policy tournament: every
# registered kernel policy (cache.AllocNames) over the scan-heavy
# Figure 5 mixes with the apps left oblivious, so the kernel policy is
# the only variable. The matrix lands as a `policy_tournament` section
# in BENCH_acbench.json (BENCH trajectory).
bench-policy-tournament:
	$(GO) run ./cmd/acbench -run all -json -tournament > BENCH_acbench.json

# Run the cache daemon on its default unix socket.
serve:
	$(GO) run ./cmd/acfcd -listen unix:/tmp/acfcd.sock -metrics 127.0.0.1:9090

# Run one node of a 3-node local cluster: `make serve-cluster NODE=1`
# (and 2 and 3 in other terminals). The nodes share a directory origin;
# files route to their hash owner, misses pull through warm peers, and
# ctrl-C runs the planned-leave handoff.
NODE ?= 1
CLUSTER_MEMBERS = tcp:127.0.0.1:4501,tcp:127.0.0.1:4502,tcp:127.0.0.1:4503
serve-cluster:
	$(GO) run ./cmd/acfcd -listen tcp:127.0.0.1:450$(NODE) \
		-cluster $(CLUSTER_MEMBERS) -origin dir:/tmp/acfcd-origin \
		-metrics 127.0.0.1:909$(NODE)

# Replay a workload against a running daemon (make serve, elsewhere).
loadtest:
	$(GO) run ./cmd/acload -addr unix:/tmp/acfcd.sock -app cs1 -clients 4

# Server throughput/latency baseline: in-process servers at the default
# shard counts (1 and 4), each swept over 1/4/16 clients,
# machine-readable (BENCH trajectory).
bench-server:
	$(GO) run ./cmd/acload -selfserve -json > BENCH_server.json

# The wider shard-scaling sweep: fresh in-process servers at 1, 4 and 16
# kernel shards, each swept over 1/4/16 clients.
bench-server-shards:
	$(GO) run ./cmd/acload -selfserve -json -shards 1,4,16 > BENCH_server.json

# The standard sweep plus the hot-block scenario: 16 clients hammering
# one shared file through a latency-injected store, run once with the
# synchronous fill path (write-behind off, read-ahead off — the PR 5
# baseline) and once pipelined (MSHR coalescing + write-behind +
# read-ahead), appended as a `hot_block` section to BENCH_server.json.
bench-server-hot:
	$(GO) run ./cmd/acload -selfserve -json -hot > BENCH_server.json

# The standard sweep plus the cold-fill scenario: 16 clients scanning
# pre-populated files through an empty cache, so every request funnels
# through the fill path. Each backend (latency-injected mem store, file
# store) runs unbatched (goroutine per fill) and batched (worker pool +
# run coalescing into preadv), appended as a `cold_fill` section.
bench-server-cold:
	$(GO) run ./cmd/acload -selfserve -json -cold > BENCH_server.json

# The standard sweep plus the cluster sweep: 1, 2 and 4 in-process
# cluster nodes over a shared origin, 16 routing clients, a cold pass
# (every read a pull-through fill) and a hot pass, appended as a
# `cluster_sweeps` section with the summed peer-fill counters.
bench-server-cluster:
	$(GO) run ./cmd/acload -selfserve -json -cluster > BENCH_server.json

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/acbench

charts:
	$(GO) run ./cmd/acbench -charts

fuzz:
	$(GO) test ./internal/cache/ -fuzz FuzzCacheOps -fuzztime 30s

# Short fuzz of the frame decoders (one -fuzz pattern per invocation is
# a go test restriction): arbitrary bytes through both decode paths,
# then encode/decode round-trips.
fuzz-frames:
	$(GO) test ./internal/server/ -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime 5s
	$(GO) test ./internal/server/ -run '^$$' -fuzz '^FuzzFrameRoundTrip$$' -fuzztime 5s

# The artifacts recorded in the repository.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
