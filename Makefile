GO ?= go

.PHONY: all check test vet race race-hot bench bench-cache bench-sim bench-json bench-server serve loadtest experiments charts fuzz clean outputs

all: check

# The default gate: static checks, the test suite, then the race
# detector over the packages with real cross-goroutine traffic (the
# parallel scheduler, the simulations it drives, and the cache server).
check: vet test race-hot

race-hot:
	$(GO) test -race ./internal/expt ./internal/core ./internal/server

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The BUF<->ACM hot-path microbenchmarks, repeated for benchstat: hit
# path, two-level miss path, and the full evict/placeholder cycle.
bench-cache:
	$(GO) test ./internal/cache -run '^$$' -bench 'LookupHit|MissEvict|MissReplace' -benchmem -count 5

# The DES engine microbenchmarks, repeated for benchstat: the lookahead
# fast path vs the parked slow path, the forced-handoff interleave, and
# the event-heap push/pop cycle.
bench-sim:
	$(GO) test ./internal/sim -run '^$$' -bench 'Sleep|TwoProcInterleave|EventHeap' -benchmem -count 5

# Machine-readable experiment timings + run-cache stats (BENCH trajectory).
bench-json:
	$(GO) run ./cmd/acbench -run all -json > BENCH_acbench.json

# Run the cache daemon on its default unix socket.
serve:
	$(GO) run ./cmd/acfcd -listen unix:/tmp/acfcd.sock -metrics 127.0.0.1:9090

# Replay a workload against a running daemon (make serve, elsewhere).
loadtest:
	$(GO) run ./cmd/acload -addr unix:/tmp/acfcd.sock -app cs1 -clients 4

# Server throughput/latency baseline: in-process server, 1/4/16-client
# sweep, machine-readable (BENCH trajectory).
bench-server:
	$(GO) run ./cmd/acload -selfserve -json > BENCH_server.json

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/acbench

charts:
	$(GO) run ./cmd/acbench -charts

fuzz:
	$(GO) test ./internal/cache/ -fuzz FuzzCacheOps -fuzztime 30s

# The artifacts recorded in the repository.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
