GO ?= go

.PHONY: all check test vet race bench bench-json experiments charts fuzz clean outputs

all: check

# The default gate: static checks, then the test suite.
check: vet test

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable experiment timings + run-cache stats (BENCH trajectory).
bench-json:
	$(GO) run ./cmd/acbench -run all -json > BENCH_acbench.json

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/acbench

charts:
	$(GO) run ./cmd/acbench -charts

fuzz:
	$(GO) test ./internal/cache/ -fuzz FuzzCacheOps -fuzztime 30s

# The artifacts recorded in the repository.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
