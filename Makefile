GO ?= go

.PHONY: all check test vet race race-hot bench bench-cache bench-sim bench-json experiments charts fuzz clean outputs

all: check

# The default gate: static checks, the test suite, then the race
# detector over the packages with real cross-goroutine traffic (the
# parallel scheduler and the simulations it drives).
check: vet test race-hot

race-hot:
	$(GO) test -race ./internal/expt ./internal/core

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The BUF<->ACM hot-path microbenchmarks, repeated for benchstat: hit
# path, two-level miss path, and the full evict/placeholder cycle.
bench-cache:
	$(GO) test ./internal/cache -run '^$$' -bench 'LookupHit|MissEvict|MissReplace' -benchmem -count 5

# The DES engine microbenchmarks, repeated for benchstat: the lookahead
# fast path vs the parked slow path, the forced-handoff interleave, and
# the event-heap push/pop cycle.
bench-sim:
	$(GO) test ./internal/sim -run '^$$' -bench 'Sleep|TwoProcInterleave|EventHeap' -benchmem -count 5

# Machine-readable experiment timings + run-cache stats (BENCH trajectory).
bench-json:
	$(GO) run ./cmd/acbench -run all -json > BENCH_acbench.json

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/acbench

charts:
	$(GO) run ./cmd/acbench -charts

fuzz:
	$(GO) test ./internal/cache/ -fuzz FuzzCacheOps -fuzztime 30s

# The artifacts recorded in the repository.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
